package shard

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/nncell"
	"repro/internal/pager"
)

// Magic identifies a sharded snapshot stream; callers that accept both
// formats (e.g. `nncell serve -load`) sniff it against the single-index
// magic before choosing a loader.
const Magic = "NNSHRDv1"

// maxShardCount bounds the header-declared shard count; it exists to reject
// absurd inputs early, and Load never trusts it for allocation beyond the
// slice headers.
const maxShardCount = 1 << 16

// maxShardBlob bounds one shard's declared blob length (the per-shard v2
// format's own caps bound the real payload far below this).
const maxShardBlob = 1 << 36

// The sharded on-disk format wraps the single-index v2 format:
//
//	magic   [8]byte  "NNSHRDv1"
//	shards  uint32   (partition width S)
//	per shard: present uint8; if present: blobLen uint64, then blobLen bytes
//	           of one NNCELLv2 stream (self-checksummed)
//
// Empty shards (no live points) are written as absent — the v2 format cannot
// represent an empty index — and are recreated empty on load. Integrity is
// per shard: every present blob carries the v2 CRC, and Load additionally
// revalidates the routing invariant over all loaded points, so a stream
// whose blobs were shuffled between shard slots is rejected.
//
// Save snapshots each shard under that shard's read lock; concurrent writers
// to *other* shards proceed, so the file is a point-in-time image per shard,
// not across shards. That is the same guarantee the serving layer's periodic
// snapshot had for a single index (writers wait, readers proceed), widened
// shard-wise; a cross-shard-atomic snapshot would require pausing all
// writers for the full dump, which the serving path deliberately avoids.
func (s *Sharded) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	le := binary.LittleEndian
	if _, err := bw.WriteString(Magic); err != nil {
		return fmt.Errorf("shard: save: %w", err)
	}
	if err := binary.Write(bw, le, uint32(len(s.shards))); err != nil {
		return fmt.Errorf("shard: save: %w", err)
	}
	var buf bytes.Buffer
	for i, ix := range s.shards {
		buf.Reset()
		// A shard with no live points is absent in the stream. Note the
		// Len/Save pair is not atomic against a concurrent insert into this
		// shard; the snapshot is simply taken per shard at slightly
		// different instants, as documented above.
		if ix.Len() == 0 {
			if err := binary.Write(bw, le, uint8(0)); err != nil {
				return fmt.Errorf("shard: save: %w", err)
			}
			continue
		}
		if err := ix.Save(&buf); err != nil {
			return fmt.Errorf("shard: save shard %d: %w", i, err)
		}
		if err := binary.Write(bw, le, uint8(1)); err != nil {
			return fmt.Errorf("shard: save: %w", err)
		}
		if err := binary.Write(bw, le, uint64(buf.Len())); err != nil {
			return fmt.Errorf("shard: save: %w", err)
		}
		if _, err := bw.Write(buf.Bytes()); err != nil {
			return fmt.Errorf("shard: save: %w", err)
		}
	}
	return bw.Flush()
}

// Load reconstructs a sharded index from a stream written by Save. Each
// shard gets a fresh pager configured by opts.Pager; opts.Shards is ignored
// (the stream records the partition width, which the global-id mapping
// depends on). Every present shard blob is fully validated by the v2
// loader; Load additionally checks that all shards agree on dimensionality
// and data space, and that every point routes to the shard that stores it.
func Load(r io.Reader, opts Options) (*Sharded, error) {
	br := bufio.NewReader(r)
	le := binary.LittleEndian

	magic := make([]byte, len(Magic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("shard: load: %w", err)
	}
	if string(magic) != Magic {
		return nil, fmt.Errorf("shard: load: bad magic %q", magic)
	}
	var count uint32
	if err := binary.Read(br, le, &count); err != nil {
		return nil, fmt.Errorf("shard: load: %w", err)
	}
	if count == 0 || count > maxShardCount {
		return nil, fmt.Errorf("shard: load: implausible shard count %d", count)
	}
	sh := &Sharded{
		shards: make([]*nncell.Index, count),
		pagers: make([]*pager.Pager, count),
	}
	for i := range sh.shards {
		var present uint8
		if err := binary.Read(br, le, &present); err != nil {
			return nil, fmt.Errorf("shard: load: shard %d: %w", i, err)
		}
		switch present {
		case 0:
			continue // filled in below, once dim/bounds are known
		case 1:
		default:
			return nil, fmt.Errorf("shard: load: corrupt presence flag %d for shard %d", present, i)
		}
		var blobLen uint64
		if err := binary.Read(br, le, &blobLen); err != nil {
			return nil, fmt.Errorf("shard: load: shard %d: %w", i, err)
		}
		if blobLen == 0 || blobLen > maxShardBlob {
			return nil, fmt.Errorf("shard: load: implausible blob length %d for shard %d", blobLen, i)
		}
		pg := pager.New(opts.Pager)
		// The limited reader makes the inner loader's EOF checks line up
		// with the declared blob boundary: a blob that is shorter or longer
		// than declared fails the v2 loader's own trailing-garbage /
		// truncation validation.
		ix, err := nncell.Load(io.LimitReader(br, int64(blobLen)), pg)
		if err != nil {
			return nil, fmt.Errorf("shard: load: shard %d: %w", i, err)
		}
		sh.shards[i] = ix
		sh.pagers[i] = pg
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("shard: load: trailing garbage after last shard")
	}

	// Cross-shard validation: some shard must be non-empty, and all present
	// shards must describe the same space.
	for i, ix := range sh.shards {
		if ix == nil {
			continue
		}
		if sh.dim == 0 {
			sh.dim = ix.Dim()
			sh.bounds = ix.Bounds()
		}
		if ix.Dim() != sh.dim {
			return nil, fmt.Errorf("shard: load: shard %d has dim %d, shard stream established %d", i, ix.Dim(), sh.dim)
		}
		if !ix.Bounds().Equal(sh.bounds) {
			return nil, fmt.Errorf("shard: load: shard %d data space %v disagrees with %v", i, ix.Bounds(), sh.bounds)
		}
	}
	if sh.dim == 0 {
		return nil, nncell.ErrEmpty
	}
	for i := range sh.shards {
		if sh.shards[i] != nil {
			continue
		}
		pg := pager.New(opts.Pager)
		ix, err := nncell.NewEmpty(sh.dim, sh.bounds, pg, opts.Index)
		if err != nil {
			return nil, fmt.Errorf("shard: load: shard %d: %w", i, err)
		}
		sh.shards[i] = ix
		sh.pagers[i] = pg
	}
	// Routing invariant: a stream whose blobs were rearranged (or written
	// with a different hash) would break routed lookups silently; reject it.
	for i, ix := range sh.shards {
		for _, local := range ix.IDs() {
			p, _ := ix.Point(local)
			if want := route(p, len(sh.shards)); want != i {
				return nil, fmt.Errorf("shard: load: shard %d holds point %v that routes to shard %d", i, p, want)
			}
		}
	}
	return sh, nil
}
