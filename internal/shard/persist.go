package shard

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/nncell"
	"repro/internal/pager"
	"repro/internal/vec"
)

// Magic identifies the current sharded snapshot stream; callers that accept
// several formats (e.g. `nncell serve -load`) sniff it against the
// single-index magic before choosing a loader. MagicV1 is the previous
// sharded format, which Load still accepts (v1 predates pluggable routing,
// so a v1 stream always loads hash-routed).
const (
	Magic   = "NNSHRDv2"
	MagicV1 = "NNSHRDv1"
)

// IsSnapshotMagic reports whether m is the magic of any sharded snapshot
// version this package can load.
func IsSnapshotMagic(m string) bool { return m == Magic || m == MagicV1 }

// maxShardCount bounds the header-declared shard count; it exists to reject
// absurd inputs early, and Load never trusts it for allocation beyond the
// slice headers.
const maxShardCount = 1 << 16

// maxShardDim bounds the header-declared dimensionality (the per-shard blobs
// re-validate it; this only caps the header-driven bounds allocation).
const maxShardDim = 1 << 12

// maxShardBlob bounds one shard's declared blob length (the per-shard v2
// format's own caps bound the real payload far below this).
const maxShardBlob = 1 << 36

// The sharded on-disk format wraps the single-index v2 format:
//
//	magic   [8]byte  "NNSHRDv2"
//	shards  uint32   (partition width S)
//	dim     uint16
//	lo      float64 × dim   (data-space lower corner)
//	hi      float64 × dim   (data-space upper corner)
//	route   uint8    (RouteKind: 0 hash, 1 grid)
//	if grid: m uint8, then per split: dim uint16, count uint32
//	per shard: present uint8; if present: blobLen uint64, then blobLen bytes
//	           of one NNCELLv2 stream (self-checksummed)
//
// The header records everything Load needs to rebuild the router
// deterministically (grid tile edges are a pure function of bounds × dims ×
// counts), so routed placement is identical across save/load. Recording dim
// and bounds in the header — v1 recovered them from the first non-empty
// shard — also lets an all-empty sharded index round-trip, which the empty
// bootstrap path (NewEmpty + periodic snapshots before any insert) needs.
//
// Empty shards (no live points) are written as absent — the per-shard v2
// format cannot represent an empty index — and are recreated empty on load.
// Integrity is per shard: every present blob carries the v2 CRC, and Load
// additionally revalidates the routing invariant over all loaded points, so
// a stream whose blobs were shuffled between shard slots (or whose routing
// header was altered) is rejected.
//
// Save snapshots each shard under that shard's read lock; concurrent writers
// to *other* shards proceed, so the file is a point-in-time image per shard,
// not across shards. That is the same guarantee the serving layer's periodic
// snapshot had for a single index (writers wait, readers proceed), widened
// shard-wise; a cross-shard-atomic snapshot would require pausing all
// writers for the full dump, which the serving path deliberately avoids.
func (s *Sharded) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	le := binary.LittleEndian
	if _, err := bw.WriteString(Magic); err != nil {
		return fmt.Errorf("shard: save: %w", err)
	}
	if err := binary.Write(bw, le, uint32(len(s.shards))); err != nil {
		return fmt.Errorf("shard: save: %w", err)
	}
	if err := binary.Write(bw, le, uint16(s.dim)); err != nil {
		return fmt.Errorf("shard: save: %w", err)
	}
	for _, v := range s.bounds.Lo {
		if err := binary.Write(bw, le, v); err != nil {
			return fmt.Errorf("shard: save: %w", err)
		}
	}
	for _, v := range s.bounds.Hi {
		if err := binary.Write(bw, le, v); err != nil {
			return fmt.Errorf("shard: save: %w", err)
		}
	}
	switch r := s.router.(type) {
	case *hashRouter:
		if err := binary.Write(bw, le, uint8(RouteHash)); err != nil {
			return fmt.Errorf("shard: save: %w", err)
		}
	case *gridRouter:
		if err := binary.Write(bw, le, uint8(RouteGrid)); err != nil {
			return fmt.Errorf("shard: save: %w", err)
		}
		if err := binary.Write(bw, le, uint8(len(r.dims))); err != nil {
			return fmt.Errorf("shard: save: %w", err)
		}
		for i, dim := range r.dims {
			if err := binary.Write(bw, le, uint16(dim)); err != nil {
				return fmt.Errorf("shard: save: %w", err)
			}
			if err := binary.Write(bw, le, uint32(r.counts[i])); err != nil {
				return fmt.Errorf("shard: save: %w", err)
			}
		}
	default:
		return fmt.Errorf("shard: save: unpersistable router %T", r)
	}
	var buf bytes.Buffer
	for i, ix := range s.shards {
		buf.Reset()
		// A shard with no live points is absent in the stream. Note the
		// Len/Save pair is not atomic against a concurrent insert into this
		// shard; the snapshot is simply taken per shard at slightly
		// different instants, as documented above.
		if ix.Len() == 0 {
			if err := binary.Write(bw, le, uint8(0)); err != nil {
				return fmt.Errorf("shard: save: %w", err)
			}
			continue
		}
		if err := ix.Save(&buf); err != nil {
			return fmt.Errorf("shard: save shard %d: %w", i, err)
		}
		if err := binary.Write(bw, le, uint8(1)); err != nil {
			return fmt.Errorf("shard: save: %w", err)
		}
		if err := binary.Write(bw, le, uint64(buf.Len())); err != nil {
			return fmt.Errorf("shard: save: %w", err)
		}
		if _, err := bw.Write(buf.Bytes()); err != nil {
			return fmt.Errorf("shard: save: %w", err)
		}
	}
	return bw.Flush()
}

// Load reconstructs a sharded index from a stream written by Save (current
// or v1 format). Each shard gets a fresh pager configured by opts.Pager;
// opts.Shards, opts.Route and opts.Grid are ignored — the stream records the
// partition width and routing policy, which the global-id mapping and point
// placement depend on. Every present shard blob is fully validated by the
// per-shard v2 loader; Load additionally checks that all shards agree with
// the header on dimensionality and data space, and that every point routes
// to the shard that stores it.
func Load(r io.Reader, opts Options) (*Sharded, error) {
	br := bufio.NewReader(r)
	le := binary.LittleEndian

	magic := make([]byte, len(Magic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("shard: load: %w", err)
	}
	switch string(magic) {
	case Magic:
	case MagicV1:
		return loadV1(br, opts)
	default:
		return nil, fmt.Errorf("shard: load: bad magic %q", magic)
	}

	var count uint32
	if err := binary.Read(br, le, &count); err != nil {
		return nil, fmt.Errorf("shard: load: %w", err)
	}
	if count == 0 || count > maxShardCount {
		return nil, fmt.Errorf("shard: load: implausible shard count %d", count)
	}
	var dim uint16
	if err := binary.Read(br, le, &dim); err != nil {
		return nil, fmt.Errorf("shard: load: %w", err)
	}
	if dim == 0 || dim > maxShardDim {
		return nil, fmt.Errorf("shard: load: implausible dimensionality %d", dim)
	}
	bounds := vec.Rect{Lo: make(vec.Point, dim), Hi: make(vec.Point, dim)}
	for i := range bounds.Lo {
		if err := binary.Read(br, le, &bounds.Lo[i]); err != nil {
			return nil, fmt.Errorf("shard: load: %w", err)
		}
	}
	for i := range bounds.Hi {
		if err := binary.Read(br, le, &bounds.Hi[i]); err != nil {
			return nil, fmt.Errorf("shard: load: %w", err)
		}
	}
	for i := range bounds.Lo {
		lo, hi := bounds.Lo[i], bounds.Hi[i]
		// The negated comparison also rejects NaN corners.
		if !(lo < hi) || math.IsInf(lo, 0) || math.IsInf(hi, 0) {
			return nil, fmt.Errorf("shard: load: corrupt data space [%v, %v] in dim %d", lo, hi, i)
		}
	}
	var kind uint8
	if err := binary.Read(br, le, &kind); err != nil {
		return nil, fmt.Errorf("shard: load: %w", err)
	}
	var router Router
	switch RouteKind(kind) {
	case RouteHash:
		router = &hashRouter{shards: int(count)}
	case RouteGrid:
		var m uint8
		if err := binary.Read(br, le, &m); err != nil {
			return nil, fmt.Errorf("shard: load: %w", err)
		}
		if int(m) > maxGridDims {
			return nil, fmt.Errorf("shard: load: grid splits %d dims, max %d", m, maxGridDims)
		}
		dims := make([]int, m)
		counts := make([]int, m)
		for i := range dims {
			var sd uint16
			var sc uint32
			if err := binary.Read(br, le, &sd); err != nil {
				return nil, fmt.Errorf("shard: load: %w", err)
			}
			if err := binary.Read(br, le, &sc); err != nil {
				return nil, fmt.Errorf("shard: load: %w", err)
			}
			dims[i], counts[i] = int(sd), int(sc)
		}
		g, err := newGridRouter(int(dim), bounds, dims, counts)
		if err != nil {
			return nil, fmt.Errorf("shard: load: %w", err)
		}
		if g.Shards() != int(count) {
			return nil, fmt.Errorf("shard: load: grid tile product %d disagrees with shard count %d", g.Shards(), count)
		}
		router = g
	default:
		return nil, fmt.Errorf("shard: load: unknown routing policy %d", kind)
	}

	sh := &Sharded{
		dim:    int(dim),
		bounds: bounds,
		router: router,
		shards: make([]*nncell.Index, count),
		pagers: make([]*pager.Pager, count),
	}
	if err := loadShardBlobs(br, sh, opts); err != nil {
		return nil, err
	}

	// Cross-shard validation: all present shards must describe the header's
	// space. (All-empty is legal in v2 — the header carries the geometry.)
	for i, ix := range sh.shards {
		if ix == nil {
			continue
		}
		if ix.Dim() != sh.dim {
			return nil, fmt.Errorf("shard: load: shard %d has dim %d, header declares %d", i, ix.Dim(), sh.dim)
		}
		if !ix.Bounds().Equal(sh.bounds) {
			return nil, fmt.Errorf("shard: load: shard %d data space %v disagrees with %v", i, ix.Bounds(), sh.bounds)
		}
	}
	if err := fillEmptyShards(sh, opts); err != nil {
		return nil, err
	}
	if err := checkRoutingInvariant(sh); err != nil {
		return nil, err
	}
	return sh, nil
}

// loadV1 reads the remainder of a v1 stream (magic already consumed). v1
// carries no routing header — placement was always FNV hash — and no
// geometry, so an all-absent v1 stream is unloadable (ErrEmpty), exactly as
// before.
func loadV1(br *bufio.Reader, opts Options) (*Sharded, error) {
	le := binary.LittleEndian
	var count uint32
	if err := binary.Read(br, le, &count); err != nil {
		return nil, fmt.Errorf("shard: load: %w", err)
	}
	if count == 0 || count > maxShardCount {
		return nil, fmt.Errorf("shard: load: implausible shard count %d", count)
	}
	sh := &Sharded{
		router: &hashRouter{shards: int(count)},
		shards: make([]*nncell.Index, count),
		pagers: make([]*pager.Pager, count),
	}
	if err := loadShardBlobs(br, sh, opts); err != nil {
		return nil, err
	}

	// Cross-shard validation: some shard must be non-empty (v1 has no other
	// source for dim/bounds), and all present shards must agree.
	for i, ix := range sh.shards {
		if ix == nil {
			continue
		}
		if sh.dim == 0 {
			sh.dim = ix.Dim()
			sh.bounds = ix.Bounds()
		}
		if ix.Dim() != sh.dim {
			return nil, fmt.Errorf("shard: load: shard %d has dim %d, shard stream established %d", i, ix.Dim(), sh.dim)
		}
		if !ix.Bounds().Equal(sh.bounds) {
			return nil, fmt.Errorf("shard: load: shard %d data space %v disagrees with %v", i, ix.Bounds(), sh.bounds)
		}
	}
	if sh.dim == 0 {
		return nil, nncell.ErrEmpty
	}
	if err := fillEmptyShards(sh, opts); err != nil {
		return nil, err
	}
	if err := checkRoutingInvariant(sh); err != nil {
		return nil, err
	}
	return sh, nil
}

// loadShardBlobs reads the per-shard present/blob section (shared by every
// stream version) into sh.shards/sh.pagers, leaving absent slots nil, and
// enforces that the stream ends exactly after the last shard.
func loadShardBlobs(br *bufio.Reader, sh *Sharded, opts Options) error {
	le := binary.LittleEndian
	for i := range sh.shards {
		var present uint8
		if err := binary.Read(br, le, &present); err != nil {
			return fmt.Errorf("shard: load: shard %d: %w", i, err)
		}
		switch present {
		case 0:
			continue // filled in later, once dim/bounds are known
		case 1:
		default:
			return fmt.Errorf("shard: load: corrupt presence flag %d for shard %d", present, i)
		}
		var blobLen uint64
		if err := binary.Read(br, le, &blobLen); err != nil {
			return fmt.Errorf("shard: load: shard %d: %w", i, err)
		}
		if blobLen == 0 || blobLen > maxShardBlob {
			return fmt.Errorf("shard: load: implausible blob length %d for shard %d", blobLen, i)
		}
		pg := pager.New(opts.Pager)
		// The limited reader makes the inner loader's EOF checks line up
		// with the declared blob boundary: a blob that is shorter or longer
		// than declared fails the v2 loader's own trailing-garbage /
		// truncation validation.
		ix, err := nncell.Load(io.LimitReader(br, int64(blobLen)), pg)
		if err != nil {
			return fmt.Errorf("shard: load: shard %d: %w", i, err)
		}
		sh.shards[i] = ix
		sh.pagers[i] = pg
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return fmt.Errorf("shard: load: trailing garbage after last shard")
	}
	return nil
}

// fillEmptyShards replaces absent shard slots with empty indexes over the
// established data space.
func fillEmptyShards(sh *Sharded, opts Options) error {
	for i := range sh.shards {
		if sh.shards[i] != nil {
			continue
		}
		pg := pager.New(opts.Pager)
		ix, err := nncell.NewEmpty(sh.dim, sh.bounds, pg, opts.Index)
		if err != nil {
			return fmt.Errorf("shard: load: shard %d: %w", i, err)
		}
		sh.shards[i] = ix
		sh.pagers[i] = pg
	}
	return nil
}

// checkRoutingInvariant verifies that every stored point routes to the shard
// that holds it. A stream whose blobs were rearranged, written with a
// different hash, or whose routing header was altered would break routed
// lookups silently; reject it.
func checkRoutingInvariant(sh *Sharded) error {
	for i, ix := range sh.shards {
		for _, local := range ix.IDs() {
			p, _ := ix.Point(local)
			if want := sh.router.Route(p); want != i {
				return fmt.Errorf("shard: load: shard %d holds point %v that routes to shard %d", i, p, want)
			}
		}
	}
	return nil
}
