package shard

import (
	"bytes"
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"repro/internal/nncell"
	"repro/internal/pager"
	"repro/internal/scan"
	"repro/internal/vec"
)

func gridOptions(shards int, grid *GridConfig) Options {
	return Options{
		Shards: shards,
		Route:  RouteGrid,
		Grid:   grid,
		Pager:  pager.Config{CachePages: 64},
		Index:  nncell.Options{Algorithm: nncell.Sphere},
	}
}

func mustBuildGrid(t *testing.T, pts []vec.Point, d, shards int, grid *GridConfig) *Sharded {
	t.Helper()
	s, err := Build(pts, vec.UnitCube(d), gridOptions(shards, grid))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// Unit coverage of the tile arithmetic: interior boundaries go to the upper
// tile, -0.0 and 0.0 land in the same tile (they are numerically equal even
// though they are bit-distinct keys), and out-of-range query coordinates
// clamp to the boundary tiles.
func TestGridTileAssignment(t *testing.T) {
	g, err := newGridRouter(2, vec.UnitCube(2), []int{0, 1}, []int{4, 2})
	if err != nil {
		t.Fatal(err)
	}
	if g.Shards() != 8 {
		t.Fatalf("shards = %d, want 8", g.Shards())
	}
	cases := []struct {
		p    vec.Point
		want int
	}{
		{vec.Point{0, 0}, 0},
		{vec.Point{0.24, 0.49}, 0},
		{vec.Point{0.25, 0}, 2},  // interior edge -> upper tile
		{vec.Point{0.5, 0.5}, 5}, // both coordinates on edges
		{vec.Point{0.9999, 0.99}, 7},
		{vec.Point{1, 1}, 7},                      // outer boundary stays in the last tile
		{vec.Point{math.Copysign(0, -1), 0.1}, 0}, // -0.0 == 0.0 numerically
		{vec.Point{-3, 0.6}, 1},                   // clamped queries
		{vec.Point{7, 7}, 7},
	}
	for _, c := range cases {
		if got := g.Route(c.p); got != c.want {
			t.Errorf("Route(%v) = %d, want %d", c.p, got, c.want)
		}
	}

	// Plan must enumerate every shard once, ascending by (MinDist2, Shard),
	// with the query's own tile at distance zero.
	q := vec.Point{0.1, 0.1}
	plan := g.Plan(nil, q)
	if len(plan) != g.Shards() {
		t.Fatalf("plan has %d entries, want %d", len(plan), g.Shards())
	}
	seen := map[int]bool{}
	for i, sd := range plan {
		if seen[sd.Shard] {
			t.Fatalf("plan repeats shard %d", sd.Shard)
		}
		seen[sd.Shard] = true
		if i > 0 && planLess(sd, plan[i-1]) {
			t.Fatalf("plan out of order at %d: %+v after %+v", i, sd, plan[i-1])
		}
	}
	if plan[0].Shard != g.Route(q) || plan[0].MinDist2 != 0 {
		t.Fatalf("plan head %+v, want query tile %d at distance 0", plan[0], g.Route(q))
	}
}

func TestDeriveGrid(t *testing.T) {
	// S=64 with d=8: three split dimensions at 4 tiles each (the integer
	// cube root must not misround 64^(1/3)).
	dims, counts := deriveGrid(64, 8, nil)
	if len(dims) != 3 {
		t.Fatalf("derived %d split dims for S=64, want 3", len(dims))
	}
	for _, c := range counts {
		if c != 4 {
			t.Fatalf("counts = %v, want all 4", counts)
		}
	}
	// S=10 rounds down to the nearest realizable product (3x3 = 9).
	dims10, counts10 := deriveGrid(10, 4, nil)
	g, err := newGridRouter(4, vec.UnitCube(4), dims10, counts10)
	if err != nil {
		t.Fatal(err)
	}
	if g.Shards() != 9 {
		t.Fatalf("S=10 realized %d shards, want 9", g.Shards())
	}
	// Variance drives the dimension choice: dim 2 varies the most, dim 0
	// second; the 2-way derivation must pick exactly those.
	rng := rand.New(rand.NewSource(5))
	pts := make([]vec.Point, 200)
	for i := range pts {
		pts[i] = vec.Point{0.4 + 0.2*rng.Float64(), 0.5, rng.Float64(), 0.45 + 0.1*rng.Float64()}
	}
	dims, _ = deriveGrid(4, 4, pts)
	if len(dims) != 2 || dims[0] != 2 || dims[1] != 0 {
		t.Fatalf("variance-derived dims = %v, want [2 0]", dims)
	}
}

// The tentpole oracle test: a grid-routed sharded index must stay exactly
// equivalent to a sequential scan through rounds of batched insert/delete
// churn, with concurrent readers running against each round's mutations so
// the race detector sees the full read/write interleaving. The point stream
// includes coordinates exactly on tile boundaries and a -0.0/0.0
// bit-distinct pair (equal distances, distinct keys).
func TestGridShardedOracleUnderChurn(t *testing.T) {
	const d = 4
	const k = 5
	grid := &GridConfig{Dims: []int{0, 1}, Counts: []int{3, 3}}
	base := uniquePoints(t, 404, 240, d)
	// Boundary points: every interior edge coordinate (1/3, 2/3) in the
	// split dimensions, paired with off-grid coordinates elsewhere.
	boundary := []vec.Point{
		{1.0 / 3.0, 0.21, 0.3, 0.4},
		{2.0 / 3.0, 1.0 / 3.0, 0.6, 0.1},
		{0.99, 2.0 / 3.0, 0.2, 0.8},
		{1.0 / 3.0, 2.0 / 3.0, 0.5, 0.5},
		{0, 0, 0.7, 0.2}, // corner of tile 0
		{1, 1, 0.1, 0.9}, // far corner, last tile
	}
	// A bit-distinct pair at numerically identical coordinates: distinct
	// keys everywhere, equal distance to every query.
	zero := vec.Point{0.5, 0.25, 0.125, 0}
	negZero := vec.Point{0.5, 0.25, 0.125, math.Copysign(0, -1)}

	s, err := Build(base, vec.UnitCube(d), gridOptions(9, grid))
	if err != nil {
		t.Fatal(err)
	}
	live := map[int]vec.Point{}
	for _, gid := range s.IDs() {
		p, _ := s.Point(gid)
		live[gid] = p
	}

	rng := rand.New(rand.NewSource(405))
	extra := uniquePoints(t, 406, 120, d)
	nextExtra := 0
	takeExtra := func(n int) []vec.Point {
		batch := extra[nextExtra : nextExtra+n]
		nextExtra += n
		return batch
	}

	// oracleNN returns the minimum distance, the lowest gid achieving it,
	// and how many live points achieve it — with the coincident -0.0/0.0
	// pair in play, exact ties are real, and the winning id among tied
	// points in the SAME shard is engine-order, not gid-order.
	oracleNN := func(q vec.Point) (gid int, d2 float64, ties int) {
		gid, d2 = -1, math.Inf(1)
		for g, p := range live {
			dd := (vec.Euclidean{}).Dist2(q, p)
			switch {
			case dd < d2:
				gid, d2, ties = g, dd, 1
			case dd == d2:
				ties++
				if g < gid {
					gid = g
				}
			}
		}
		return gid, d2, ties
	}
	oracleKDists := func(q vec.Point, k int) []float64 {
		all := make([]float64, 0, len(live))
		for _, p := range live {
			all = append(all, (vec.Euclidean{}).Dist2(q, p))
		}
		sort.Float64s(all)
		if k > len(all) {
			k = len(all)
		}
		return all[:k]
	}

	check := func(round int) {
		t.Helper()
		for i := 0; i < 40; i++ {
			q := randQuery(rng, d)
			if i%8 == 0 { // aim some queries straight at tile boundaries
				q[0] = 1.0 / 3.0
				q[1] = 2.0 / 3.0
			}
			wantID, want, ties := oracleNN(q)
			nb, err := s.NearestNeighbor(q)
			if err != nil {
				t.Fatalf("round %d: NN: %v", round, err)
			}
			if nb.Dist2 != want {
				t.Fatalf("round %d query %v: NN dist² %v, oracle %v", round, q, nb.Dist2, want)
			}
			if p, ok := s.Point(nb.ID); !ok || (vec.Euclidean{}).Dist2(q, p) != want {
				t.Fatalf("round %d query %v: NN id %d is not a live point at the NN distance", round, q, nb.ID)
			}
			if ties == 1 && nb.ID != wantID {
				t.Fatalf("round %d query %v: NN id %d, oracle id %d (unique minimum)", round, q, nb.ID, wantID)
			}
			nbs, err := s.KNearest(q, k)
			if err != nil {
				t.Fatalf("round %d: KNearest: %v", round, err)
			}
			wantK := oracleKDists(q, k)
			if len(nbs) != len(wantK) {
				t.Fatalf("round %d: KNearest returned %d, oracle %d", round, len(nbs), len(wantK))
			}
			for j, nbj := range nbs {
				if nbj.Dist2 != wantK[j] {
					t.Fatalf("round %d: KNearest[%d] dist² %v, oracle %v", round, j, nbj.Dist2, wantK[j])
				}
				p, ok := s.Point(nbj.ID)
				if !ok || (vec.Euclidean{}).Dist2(q, p) != nbj.Dist2 {
					t.Fatalf("round %d: KNearest[%d] id %d is not a live point at its distance", round, j, nbj.ID)
				}
			}
			found := false
			for _, id := range s.Candidates(q) {
				if p, ok := s.Point(id); ok && (vec.Euclidean{}).Dist2(q, p) == want {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("round %d query %v: candidate set misses the true NN", round, q)
			}
		}
	}

	specials := [][]vec.Point{boundary, {zero, negZero}}
	for round := 0; round < 4; round++ {
		// Concurrent readers race the round's mutations; they only assert
		// basic sanity (exactness is checked after the quiesce).
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for r := 0; r < 3; r++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				rr := rand.New(rand.NewSource(seed))
				for {
					select {
					case <-stop:
						return
					default:
					}
					q := randQuery(rr, d)
					if _, err := s.NearestNeighbor(q); err != nil {
						t.Errorf("concurrent NN: %v", err)
						return
					}
					if _, err := s.KNearest(q, k); err != nil {
						t.Errorf("concurrent KNearest: %v", err)
						return
					}
					s.Candidates(q)
				}
			}(int64(round*10 + r))
		}

		batch := takeExtra(20)
		if round < len(specials) {
			batch = append(append([]vec.Point{}, batch...), specials[round]...)
		}
		gids, err := s.InsertBatch(batch)
		if err != nil {
			t.Fatalf("round %d: InsertBatch: %v", round, err)
		}
		for i, gid := range gids {
			live[gid] = batch[i]
		}
		// Delete a deterministic slice of the live set, including (in the
		// round after its insertion) one of the bit-distinct pair.
		var doomed []int
		for gid := range live {
			if len(doomed) < 12 && gid%7 == round%7 {
				doomed = append(doomed, gid)
			}
		}
		if round == 2 {
			// Target exactly the -0.0 member of the coincident pair; Equal
			// is numeric, so the sign bit is the discriminator.
			for gid, p := range live {
				if p.Equal(negZero) && math.Signbit(p[3]) {
					doomed = append(doomed, gid)
				}
			}
		}
		if err := s.DeleteBatch(doomed); err != nil {
			t.Fatalf("round %d: DeleteBatch: %v", round, err)
		}
		for _, gid := range doomed {
			delete(live, gid)
		}

		close(stop)
		wg.Wait()
		if t.Failed() {
			t.FailNow()
		}
		check(round)
		if err := s.CheckInvariants(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
}

// Grid routing must actually skip shards: near-data queries on a 64-shard
// grid should probe a small handful of tiles, while hash routing probes all
// 64 every time. Both must agree with the scan oracle throughout.
func TestGridRoutingVisitsFewShards(t *testing.T) {
	const d = 8
	const S = 64
	pts := uniquePoints(t, 707, 4000, d)
	oracle := scan.New(pts, vec.Euclidean{}, pager.New(pager.Config{}))
	hash := mustBuild(t, pts, d, S)
	grid := mustBuildGrid(t, pts, d, S, nil)
	if grid.NumShards() != S {
		t.Fatalf("grid realized %d shards, want %d", grid.NumShards(), S)
	}
	if grid.RouteKind() != RouteGrid || hash.RouteKind() != RouteHash {
		t.Fatalf("route kinds: grid=%v hash=%v", grid.RouteKind(), hash.RouteKind())
	}

	rng := rand.New(rand.NewSource(708))
	const queries = 400
	for i := 0; i < queries; i++ {
		// Near-data queries: the serving-path distribution (clients ask near
		// known points), where the best-so-far ball is tiny.
		base := pts[rng.Intn(len(pts))]
		q := make(vec.Point, d)
		for j := range q {
			v := base[j] + rng.NormFloat64()*0.01
			q[j] = math.Min(1, math.Max(0, v))
		}
		_, want := oracle.Nearest(q)
		gn, err := grid.NearestNeighbor(q)
		if err != nil {
			t.Fatal(err)
		}
		hn, err := hash.NearestNeighbor(q)
		if err != nil {
			t.Fatal(err)
		}
		if gn.Dist2 != want || hn.Dist2 != want {
			t.Fatalf("query %d: grid %v / hash %v, oracle %v", i, gn.Dist2, hn.Dist2, want)
		}
	}

	gs, hs := grid.RouteStats(), hash.RouteStats()
	if gs.Queries != queries || hs.Queries != queries {
		t.Fatalf("route queries: grid %d hash %d, want %d", gs.Queries, hs.Queries, queries)
	}
	if mean := float64(hs.Visited) / float64(hs.Queries); mean != S {
		t.Errorf("hash mean shards visited %v, want exactly %d", mean, S)
	}
	if mean := float64(gs.Visited) / float64(gs.Queries); mean > 4 {
		t.Errorf("grid mean shards visited %v for near-data queries, want <= 4", mean)
	}
	// The histogram must account for every query.
	var total uint64
	for _, n := range gs.Hist {
		total += n
	}
	if total != gs.Queries {
		t.Errorf("grid histogram sums to %d, want %d", total, gs.Queries)
	}
}

// KNearest satellite: the heap merge with reusable buffers must keep the
// warm k-NN path allocation-free, like the NN and Candidates paths already
// are (seed KNearest allocated three slices per call).
func TestShardedKNearestAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	const d = 4
	pts := uniquePoints(t, 909, 400, d)
	for _, s := range []*Sharded{mustBuild(t, pts, d, 6), mustBuildGrid(t, pts, d, 9, nil)} {
		q := randQuery(rand.New(rand.NewSource(910)), d)
		buf, err := s.KNearestAppend(nil, q, 8)
		if err != nil {
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(100, func() {
			var err error
			buf, err = s.KNearestAppend(buf[:0], q, 8)
			if err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("%v-routed warm KNearestAppend: %v allocs/op, want 0", s.RouteKind(), allocs)
		}
	}
}

// NewEmpty satellite: both routing policies must bootstrap with zero points,
// reject queries with ErrEmpty, then accept routed inserts and answer
// exactly.
func TestShardedNewEmpty(t *testing.T) {
	const d = 3
	for _, opts := range []Options{testOptions(4), gridOptions(8, nil)} {
		s, err := NewEmpty(d, vec.UnitCube(d), opts)
		if err != nil {
			t.Fatal(err)
		}
		if s.Len() != 0 {
			t.Fatalf("empty index has %d points", s.Len())
		}
		q := vec.Point{0.5, 0.5, 0.5}
		if _, err := s.NearestNeighbor(q); err != nncell.ErrEmpty {
			t.Fatalf("NN on empty: %v, want ErrEmpty", err)
		}
		if _, err := s.KNearest(q, 3); err != nncell.ErrEmpty {
			t.Fatalf("KNearest on empty: %v, want ErrEmpty", err)
		}
		pts := uniquePoints(t, 511, 60, d)
		if _, err := s.InsertBatch(pts); err != nil {
			t.Fatal(err)
		}
		oracle := scan.New(pts, vec.Euclidean{}, pager.New(pager.Config{}))
		rng := rand.New(rand.NewSource(512))
		for i := 0; i < 30; i++ {
			q := randQuery(rng, d)
			nb, err := s.NearestNeighbor(q)
			if err != nil {
				t.Fatal(err)
			}
			if _, want := oracle.Nearest(q); nb.Dist2 != want {
				t.Fatalf("bootstrap NN dist² %v, oracle %v", nb.Dist2, want)
			}
		}
		if err := s.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
	// Invalid bootstraps fail loudly.
	if _, err := NewEmpty(0, vec.UnitCube(1), testOptions(2)); err == nil {
		t.Error("d=0 accepted")
	}
	if _, err := NewEmpty(3, vec.UnitCube(2), testOptions(2)); err == nil {
		t.Error("mismatched bounds accepted")
	}
}

// Persistence: a grid-routed snapshot must round-trip with its routing
// config (placement identical after load), and an all-empty snapshot must
// round-trip via the header geometry.
func TestShardedPersistRoundTripGrid(t *testing.T) {
	const d = 4
	pts := uniquePoints(t, 611, 150, d)
	s := mustBuildGrid(t, pts, d, 9, &GridConfig{Dims: []int{1, 3}, Counts: []int{3, 3}})
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(bytes.NewReader(buf.Bytes()), Options{Pager: pager.Config{CachePages: 16}})
	if err != nil {
		t.Fatal(err)
	}
	if loaded.RouteKind() != RouteGrid || loaded.NumShards() != 9 {
		t.Fatalf("loaded %v-routed %d shards, want grid-routed 9", loaded.RouteKind(), loaded.NumShards())
	}
	rng := rand.New(rand.NewSource(612))
	for i := 0; i < 40; i++ {
		q := randQuery(rng, d)
		a, err := s.NearestNeighbor(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := loaded.NearestNeighbor(q)
		if err != nil {
			t.Fatal(err)
		}
		if a.ID != b.ID || a.Dist2 != b.Dist2 {
			t.Fatalf("query %d: original (%d, %v), loaded (%d, %v)", i, a.ID, a.Dist2, b.ID, b.Dist2)
		}
	}
	// Routed inserts keep working against the reconstructed router.
	extra := uniquePoints(t, 613, 170, d)[150:]
	if _, err := loaded.InsertBatch(extra); err != nil {
		t.Fatal(err)
	}
	if err := loaded.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// All-empty round trip: geometry and routing come from the header.
	empty, err := NewEmpty(d, vec.UnitCube(d), gridOptions(9, &GridConfig{Dims: []int{0, 2}, Counts: []int{3, 3}}))
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := empty.Save(&buf); err != nil {
		t.Fatal(err)
	}
	eloaded, err := Load(bytes.NewReader(buf.Bytes()), Options{Pager: pager.Config{CachePages: 16}})
	if err != nil {
		t.Fatal(err)
	}
	if eloaded.Len() != 0 || eloaded.Dim() != d || eloaded.NumShards() != 9 || eloaded.RouteKind() != RouteGrid {
		t.Fatalf("all-empty round trip: len=%d dim=%d shards=%d kind=%v", eloaded.Len(), eloaded.Dim(), eloaded.NumShards(), eloaded.RouteKind())
	}
	if _, err := eloaded.InsertBatch(pts[:20]); err != nil {
		t.Fatal(err)
	}
	if err := eloaded.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// A v1 stream (no routing header) must still load, hash-routed, from its
// hand-assembled byte layout: magic, shard count, per-shard presence/blobs.
func TestShardedLoadV1Compat(t *testing.T) {
	const d = 3
	pts := uniquePoints(t, 614, 90, d)
	s := mustBuild(t, pts, d, 4) // hash-routed, so blobs satisfy v1 placement
	var v1 bytes.Buffer
	v1.WriteString(MagicV1)
	writeU32 := func(v uint32) {
		v1.Write([]byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)})
	}
	writeU32(uint32(s.NumShards()))
	for i := 0; i < s.NumShards(); i++ {
		ix := s.Shard(i)
		if ix.Len() == 0 {
			v1.WriteByte(0)
			continue
		}
		var blob bytes.Buffer
		if err := ix.Save(&blob); err != nil {
			t.Fatal(err)
		}
		v1.WriteByte(1)
		n := uint64(blob.Len())
		for b := 0; b < 8; b++ {
			v1.WriteByte(byte(n >> (8 * b)))
		}
		v1.Write(blob.Bytes())
	}
	loaded, err := Load(bytes.NewReader(v1.Bytes()), Options{Pager: pager.Config{CachePages: 16}})
	if err != nil {
		t.Fatalf("v1 load: %v", err)
	}
	if loaded.RouteKind() != RouteHash || loaded.NumShards() != s.NumShards() || loaded.Len() != s.Len() {
		t.Fatalf("v1 load: kind=%v shards=%d len=%d", loaded.RouteKind(), loaded.NumShards(), loaded.Len())
	}
	rng := rand.New(rand.NewSource(615))
	for i := 0; i < 25; i++ {
		q := randQuery(rng, d)
		a, _ := s.NearestNeighbor(q)
		b, err := loaded.NearestNeighbor(q)
		if err != nil {
			t.Fatal(err)
		}
		if a.ID != b.ID || a.Dist2 != b.Dist2 {
			t.Fatalf("v1 query %d: (%d, %v) vs (%d, %v)", i, a.ID, a.Dist2, b.ID, b.Dist2)
		}
	}
}

// Corrupted v2 routing headers must be rejected, not silently misroute.
func TestShardedLoadRejectsCorruptRouting(t *testing.T) {
	const d = 2
	pts := uniquePoints(t, 616, 60, d)
	s := mustBuildGrid(t, pts, d, 4, &GridConfig{Dims: []int{0, 1}, Counts: []int{2, 2}})
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	kindOff := len(Magic) + 4 + 2 + 8*d + 8*d // magic, count, dim, lo, hi

	corrupt := func(name string, mutate func(b []byte)) {
		t.Helper()
		b := append([]byte{}, good...)
		mutate(b)
		if _, err := Load(bytes.NewReader(b), Options{}); err == nil {
			t.Errorf("%s: corrupt stream loaded", name)
		}
	}
	corrupt("unknown route kind", func(b []byte) { b[kindOff] = 7 })
	corrupt("absurd split-dim count", func(b []byte) { b[kindOff+1] = 9 })
	corrupt("split dim out of range", func(b []byte) { b[kindOff+2] = 5 })
	corrupt("tile count zero", func(b []byte) {
		// first split's count (u16 dim, then u32 count)
		copy(b[kindOff+4:kindOff+8], []byte{0, 0, 0, 0})
	})
	// Claiming hash routing over grid-placed blobs must trip the routing
	// invariant (placement disagrees), not load silently.
	corrupt("policy swapped to hash", func(b []byte) { b[kindOff] = 0 })
}
