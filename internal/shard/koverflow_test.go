package shard

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/nncell"
	"repro/internal/pager"
	"repro/internal/scan"
	"repro/internal/vec"
)

// TestShardedKNearestOverflowReturnsLiveSet mirrors the serial overflow
// oracle across the sharded merge: with tombstones spread over shards, any
// k at or above the global live count must return exactly the live set,
// matching a brute scan over the survivors.
func TestShardedKNearestOverflowReturnsLiveSet(t *testing.T) {
	const (
		d = 4
		S = 3
	)
	pts := uniquePoints(t, 401, 90, d)
	s := mustBuild(t, pts, d, S)

	gids := s.IDs()
	deleted := map[int]bool{}
	for i, gid := range gids {
		if i%3 == 0 {
			if err := s.Delete(gid); err != nil {
				t.Fatal(err)
			}
			deleted[gid] = true
		}
	}
	var liveIDs []int
	var livePts []vec.Point
	for _, gid := range gids {
		if !deleted[gid] {
			p, ok := s.Point(gid)
			if !ok {
				t.Fatalf("live gid %d has no point", gid)
			}
			liveIDs = append(liveIDs, gid)
			livePts = append(livePts, p)
		}
	}
	oracle := scan.New(livePts, vec.Euclidean{}, pager.New(pager.Config{}))

	rng := rand.New(rand.NewSource(402))
	for trial := 0; trial < 20; trial++ {
		q := randQuery(rng, d)
		for _, k := range []int{len(liveIDs), len(liveIDs) + 7, len(pts) * 2} {
			nbs, err := s.KNearest(q, k)
			if err != nil {
				t.Fatalf("k=%d: %v", k, err)
			}
			if len(nbs) != len(liveIDs) {
				t.Fatalf("k=%d returned %d neighbors, want the live set of %d", k, len(nbs), len(liveIDs))
			}
			seen := map[int]bool{}
			for _, nb := range nbs {
				if deleted[nb.ID] {
					t.Fatalf("k=%d resurrected tombstone %d", k, nb.ID)
				}
				if seen[nb.ID] {
					t.Fatalf("k=%d returned id %d twice", k, nb.ID)
				}
				seen[nb.ID] = true
			}
			want := oracle.KNearest(q, len(liveIDs))
			for i, nb := range nbs {
				if got, exp := nb.Dist2, want[i].Dist2; got != exp {
					t.Fatalf("k=%d rank %d: dist² %v, oracle %v", k, i, got, exp)
				}
				if exp := liveIDs[want[i].Index]; nb.ID != exp {
					t.Fatalf("k=%d rank %d: id %d, oracle %d", k, i, nb.ID, exp)
				}
			}
		}
	}

	// The sharded layer surfaces the same typed error for non-positive k.
	for _, k := range []int{0, -4} {
		if _, err := s.KNearest(randQuery(rng, d), k); !errors.Is(err, nncell.ErrBadK) {
			t.Fatalf("k=%d: error %v, want nncell.ErrBadK", k, err)
		}
	}
}
