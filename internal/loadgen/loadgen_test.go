package loadgen

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/nncell"
	"repro/internal/pager"
	"repro/internal/vec"
)

// indexTarget adapts a live nncell.Index to the Target interface.
type indexTarget struct {
	ix      *nncell.Index
	queries atomic.Uint64
	inserts atomic.Uint64
}

func (t *indexTarget) Query(q vec.Point) error {
	t.queries.Add(1)
	_, err := t.ix.NearestNeighbor(q)
	return err
}

func (t *indexTarget) Insert(p vec.Point) error {
	t.inserts.Add(1)
	_, err := t.ix.Insert(p)
	return err
}

func buildIndex(tb testing.TB, n, d int) *nncell.Index {
	tb.Helper()
	rng := rand.New(rand.NewSource(7))
	pts := make([]vec.Point, n)
	for i := range pts {
		p := make(vec.Point, d)
		for j := range p {
			p[j] = rng.Float64()
		}
		pts[i] = p
	}
	ix, err := nncell.Build(pts, vec.UnitCube(d), pager.New(pager.Config{CachePages: 64}), nncell.Options{Algorithm: nncell.Sphere})
	if err != nil {
		tb.Fatalf("build: %v", err)
	}
	return ix
}

func TestRunAccounting(t *testing.T) {
	ix := buildIndex(t, 200, 4)
	tgt := &indexTarget{ix: ix}
	rep, err := Run(tgt, Config{
		QPS:      2000,
		Duration: 250 * time.Millisecond,
		Dim:      4,
		PoolSize: 64,
		Seed:     1,
		ChurnQPS: 200,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if rep.Sent == 0 {
		t.Fatal("no queries sent")
	}
	if rep.Sent != rep.Completed {
		t.Fatalf("sent %d != completed %d", rep.Sent, rep.Completed)
	}
	if got := tgt.queries.Load(); got != rep.Sent {
		t.Fatalf("target saw %d queries, report says %d sent", got, rep.Sent)
	}
	if rep.Errors != 0 {
		t.Fatalf("unexpected query errors: %d", rep.Errors)
	}
	if rep.ChurnSent == 0 {
		t.Fatal("churn enabled but no inserts sent")
	}
	if got := tgt.inserts.Load(); got != rep.ChurnSent {
		t.Fatalf("target saw %d inserts, report says %d", got, rep.ChurnSent)
	}
	if rep.ChurnErrors != 0 {
		t.Fatalf("unexpected churn errors: %d", rep.ChurnErrors)
	}
	if rep.ServiceP50Micros <= 0 || rep.OnsetP50Micros <= 0 {
		t.Fatalf("empty latency quantiles: service p50=%v onset p50=%v",
			rep.ServiceP50Micros, rep.OnsetP50Micros)
	}
	// Onset latency includes scheduling delay, so it can never undercut
	// service latency at the same quantile (both are bucket upper bounds).
	if rep.OnsetP50Micros < rep.ServiceP50Micros {
		t.Fatalf("onset p50 %v < service p50 %v", rep.OnsetP50Micros, rep.ServiceP50Micros)
	}
}

// slowTarget blocks every query until released, forcing arrivals past the
// outstanding cap to be shed rather than queued.
type slowTarget struct {
	release chan struct{}
}

func (t *slowTarget) Query(vec.Point) error {
	<-t.release
	return nil
}

func (t *slowTarget) Insert(vec.Point) error { return fmt.Errorf("read-only") }

func TestRunShedsAtOutstandingCap(t *testing.T) {
	tgt := &slowTarget{release: make(chan struct{})}
	done := make(chan struct{})
	var rep Report
	var err error
	go func() {
		defer close(done)
		rep, err = Run(tgt, Config{
			QPS:            1000,
			Duration:       200 * time.Millisecond,
			Dim:            2,
			MaxOutstanding: 4,
			PoolSize:       8,
			Seed:           2,
		})
	}()
	// Let the schedule finish (all slots stuck, remainder shed), then
	// release the stuck queries so Run can drain and return.
	time.Sleep(300 * time.Millisecond)
	close(tgt.release)
	<-done
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if rep.Sent != 4 {
		t.Fatalf("sent %d, want exactly the outstanding cap of 4", rep.Sent)
	}
	if rep.Shed == 0 {
		t.Fatal("expected shed arrivals at the outstanding cap")
	}
	if rep.Completed != rep.Sent {
		t.Fatalf("completed %d != sent %d", rep.Completed, rep.Sent)
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	ix := buildIndex(t, 10, 2)
	tgt := &indexTarget{ix: ix}
	for _, cfg := range []Config{
		{QPS: 0, Duration: time.Second, Dim: 2},
		{QPS: 100, Duration: 0, Dim: 2},
		{QPS: 100, Duration: time.Second, Dim: 0},
	} {
		if _, err := Run(tgt, cfg); err == nil {
			t.Fatalf("config %+v: expected error", cfg)
		}
	}
	if _, err := Run(nil, Config{QPS: 1, Duration: time.Second, Dim: 2}); err == nil {
		t.Fatal("nil target: expected error")
	}
}
