// Package loadgen drives a nearest-neighbor target with an open-loop
// request schedule: arrivals fire at a fixed rate from a wall clock,
// independent of how fast earlier requests complete. Closed-loop drivers
// (issue, wait, repeat) let a slow server throttle its own load and hide
// queueing delay; the open-loop schedule preserves it, so the reported
// onset latency includes the time a request spent waiting to be admitted
// (coordinated-omission-free).
//
// Queries are drawn from a fixed pool of points with Zipf-distributed
// popularity, which produces the hot-spot repetition a result cache is
// designed to exploit. An optional churn goroutine issues inserts at its
// own rate to exercise invalidation during the run.
package loadgen

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/stats"
	"repro/internal/vec"
)

// Target is the system under test. Implementations must be safe for
// concurrent use; errors are counted, not fatal.
type Target interface {
	// Query resolves one nearest-neighbor lookup.
	Query(q vec.Point) error
	// Insert adds one point (churn traffic). Targets that do not support
	// writes may return an error; churn then shows up in Report.ChurnErrors.
	Insert(p vec.Point) error
}

// Config parameterizes one load-generation run.
type Config struct {
	QPS      float64       // target query arrival rate (required, > 0)
	Duration time.Duration // run length (required, > 0)

	// MaxOutstanding caps concurrent in-flight queries. When the cap is
	// reached, scheduled arrivals are shed (counted, not blocked) so the
	// schedule stays open-loop. 0 means 4096.
	MaxOutstanding int

	Dim    int      // query dimensionality (required, > 0)
	Bounds vec.Rect // sampling region for pool and churn points; zero value means the unit cube

	PoolSize int     // distinct query points (0 means 1024)
	ZipfS    float64 // Zipf skew parameter s > 1 (0 means 1.2)
	ZipfV    float64 // Zipf v parameter >= 1 (0 means 1)
	Seed     int64   // rng seed for pool, popularity, and churn

	ChurnQPS float64 // insert arrival rate; 0 disables churn
}

// Report summarizes a run. All latency quantiles are bucket upper bounds
// from a power-of-two histogram (factor-2 resolution).
type Report struct {
	Sent      uint64 `json:"sent"`      // arrivals admitted to the target
	Completed uint64 `json:"completed"` // queries that returned (ok or error)
	Errors    uint64 `json:"errors"`    // queries that returned an error
	Shed      uint64 `json:"shed"`      // arrivals dropped at the outstanding cap

	// Service latency: issue -> completion, per admitted query.
	ServiceP50Micros  float64 `json:"service_p50_micros"`
	ServiceP99Micros  float64 `json:"service_p99_micros"`
	ServiceMeanMicros float64 `json:"service_mean_micros"`

	// Open-loop latency: scheduled onset -> completion. Diverges from
	// service latency when the target falls behind the schedule.
	OnsetP50Micros float64 `json:"onset_p50_micros"`
	OnsetP99Micros float64 `json:"onset_p99_micros"`

	ChurnSent   uint64 `json:"churn_sent"`
	ChurnErrors uint64 `json:"churn_errors"`

	Elapsed      time.Duration `json:"elapsed_ns"`
	AchievedQPS  float64       `json:"achieved_qps"`
	EffectiveQPS float64       `json:"effective_qps"` // completions per second of wall clock
}

func micros(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

// Run executes one open-loop run against t and returns the report.
func Run(t Target, cfg Config) (Report, error) {
	if t == nil {
		return Report{}, fmt.Errorf("loadgen: nil target")
	}
	if cfg.QPS <= 0 || cfg.Duration <= 0 || cfg.Dim <= 0 {
		return Report{}, fmt.Errorf("loadgen: QPS, Duration and Dim must be positive (got %v, %v, %d)",
			cfg.QPS, cfg.Duration, cfg.Dim)
	}
	if cfg.MaxOutstanding <= 0 {
		cfg.MaxOutstanding = 4096
	}
	if cfg.PoolSize <= 0 {
		cfg.PoolSize = 1024
	}
	if cfg.ZipfS <= 1 {
		cfg.ZipfS = 1.2
	}
	if cfg.ZipfV < 1 {
		cfg.ZipfV = 1
	}
	bounds := cfg.Bounds
	if bounds.Dim() == 0 {
		bounds = vec.UnitCube(cfg.Dim)
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	pool := make([]vec.Point, cfg.PoolSize)
	for i := range pool {
		pool[i] = randPoint(rng, bounds)
	}
	zipf := rand.NewZipf(rng, cfg.ZipfS, cfg.ZipfV, uint64(cfg.PoolSize-1))

	var (
		rep      Report
		mu       sync.Mutex // guards rep counters
		service  stats.Histogram
		onset    stats.Histogram
		inflight = make(chan struct{}, cfg.MaxOutstanding)
		wg       sync.WaitGroup
	)

	// Pre-draw the arrival sequence so the scheduling loop does no rng
	// work (the zipf source is not safe for concurrent use anyway).
	interval := time.Duration(float64(time.Second) / cfg.QPS)
	n := int(cfg.Duration / interval)
	picks := make([]uint64, n)
	for i := range picks {
		picks[i] = zipf.Uint64()
	}

	churnStop := make(chan struct{})
	var churnWG sync.WaitGroup
	if cfg.ChurnQPS > 0 {
		churnWG.Add(1)
		go func() {
			defer churnWG.Done()
			crng := rand.New(rand.NewSource(cfg.Seed + 1))
			tick := time.NewTicker(time.Duration(float64(time.Second) / cfg.ChurnQPS))
			defer tick.Stop()
			for {
				select {
				case <-churnStop:
					return
				case <-tick.C:
					p := randPoint(crng, bounds)
					err := t.Insert(p)
					mu.Lock()
					rep.ChurnSent++
					if err != nil {
						rep.ChurnErrors++
					}
					mu.Unlock()
				}
			}
		}()
	}

	start := time.Now()
	for i := 0; i < n; i++ {
		due := start.Add(time.Duration(i) * interval)
		if d := time.Until(due); d > 0 {
			time.Sleep(d)
		}
		select {
		case inflight <- struct{}{}:
		default:
			rep.Shed++ // scheduler is the only writer of Shed before wg.Wait
			continue
		}
		rep.Sent++
		q := pool[picks[i]]
		wg.Add(1)
		go func(q vec.Point, scheduled time.Time) {
			defer wg.Done()
			defer func() { <-inflight }()
			issued := time.Now()
			err := t.Query(q)
			done := time.Now()
			service.Observe(done.Sub(issued))
			onset.Observe(done.Sub(scheduled))
			if err != nil {
				mu.Lock()
				rep.Errors++
				mu.Unlock()
			}
		}(q, due)
	}
	wg.Wait()
	close(churnStop)
	churnWG.Wait()
	rep.Elapsed = time.Since(start)

	rep.Completed = service.Count()
	rep.ServiceP50Micros = micros(service.Quantile(0.5))
	rep.ServiceP99Micros = micros(service.Quantile(0.99))
	rep.ServiceMeanMicros = micros(service.Mean())
	rep.OnsetP50Micros = micros(onset.Quantile(0.5))
	rep.OnsetP99Micros = micros(onset.Quantile(0.99))
	if secs := rep.Elapsed.Seconds(); secs > 0 {
		rep.AchievedQPS = float64(rep.Sent) / secs
		rep.EffectiveQPS = float64(rep.Completed) / secs
	}
	return rep, nil
}

func randPoint(rng *rand.Rand, b vec.Rect) vec.Point {
	p := make(vec.Point, b.Dim())
	for i := range p {
		p[i] = b.Lo[i] + rng.Float64()*(b.Hi[i]-b.Lo[i])
	}
	return p
}
