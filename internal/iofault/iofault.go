// Package iofault is the injectable write layer beneath every durability
// path in the system (the write-ahead log and the atomic snapshots). The
// production implementation (OS) is a thin veneer over the os package plus
// the directory-fsync discipline POSIX requires for durable renames; the
// in-memory implementation (Mem) models exactly the failure surface a real
// filesystem exposes to a crash — short writes, torn tails, ENOSPC, failed
// fsyncs, and the distinction between written and durable bytes — so the
// crash tests can prove, at every byte offset, that recovery never loses an
// acknowledged write and never serves a half-applied one.
package iofault

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// File is the handle surface the durability paths need: sequential reads,
// appends, fsync, close. Seeking and positional writes are deliberately
// absent — the WAL and the snapshot writer are strictly append-only, which
// is what makes their torn-tail analysis tractable.
type File interface {
	io.Reader
	io.Writer
	// Sync flushes the file's written bytes to stable storage. Durability
	// acknowledgements must not be issued before Sync returns nil.
	Sync() error
	Close() error
}

// FS is the filesystem surface of the durability layer. Implementations:
// OS (production) and Mem (crash tests with fault injection).
type FS interface {
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	MkdirAll(path string, perm os.FileMode) error
	// ReadDir returns the sorted base names of the non-directory entries of
	// the directory. A missing directory reports os.ErrNotExist.
	ReadDir(name string) ([]string, error)
	// SyncDir fsyncs the directory itself. On ext4 (and most journaling
	// filesystems) a rename or create is not durable until the parent
	// directory's metadata has been flushed; every atomic-rename publish and
	// every segment create/remove must be followed by a SyncDir.
	SyncDir(name string) error
	// Size returns the file's current length in bytes (the WAL shipping
	// manifest sizes sealed segments with it).
	Size(name string) (int64, error)
}

// OS is the production filesystem.
type OS struct{}

// OpenFile opens name with os.OpenFile semantics.
func (OS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

// Rename renames oldpath to newpath (atomic within a filesystem).
func (OS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove deletes the named file.
func (OS) Remove(name string) error { return os.Remove(name) }

// MkdirAll creates the directory and any missing parents.
func (OS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

// ReadDir lists the sorted base names of the directory's file entries.
func (OS) ReadDir(name string) ([]string, error) {
	ents, err := os.ReadDir(name)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// Size returns the file's length via os.Stat.
func (OS) Size(name string) (int64, error) {
	st, err := os.Stat(name)
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// SyncDir opens the directory and fsyncs it.
func (OS) SyncDir(name string) error {
	d, err := os.Open(name)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// WriteAtomic publishes a file durably: the content is written to a
// temporary sibling, fsynced, closed, renamed over path, and the parent
// directory is fsynced. A crash at any point leaves either the old file or
// the new one — never a torn mix — and after WriteAtomic returns nil the
// new content survives power loss (rename alone does not guarantee that on
// ext4; the directory fsync does).
func WriteAtomic(fsys FS, path string, write func(io.Writer) error) error {
	tmp := path + ".tmp"
	f, err := fsys.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("iofault: write %s: %w", path, err)
	}
	cleanup := func(err error) error {
		fsys.Remove(tmp)
		return fmt.Errorf("iofault: write %s: %w", path, err)
	}
	if err := write(f); err != nil {
		f.Close()
		return cleanup(err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return cleanup(err)
	}
	if err := f.Close(); err != nil {
		return cleanup(err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		return cleanup(err)
	}
	if err := fsys.SyncDir(filepath.Dir(path)); err != nil {
		return fmt.Errorf("iofault: write %s: sync dir: %w", path, err)
	}
	return nil
}
