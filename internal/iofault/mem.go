package iofault

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// ErrNoSpace stands in for ENOSPC in injected write failures.
var ErrNoSpace = errors.New("iofault: no space left on device")

// ErrSyncFailed stands in for a failed fsync in injected failures.
var ErrSyncFailed = errors.New("iofault: fsync failed")

type memFile struct {
	data   []byte
	synced int // prefix length known durable (last successful Sync)
}

// writeFault injects a write failure on one file: the next writes succeed
// for `remaining` more bytes, then the write is cut short (n < len(p)) and
// err is returned — the same shape a real ENOSPC or a crashed disk produces.
// The fault is sticky: once tripped, every later write fails with 0 bytes.
type writeFault struct {
	remaining int
	err       error
}

// Mem is an in-memory FS with crash semantics and fault injection. Every
// file tracks its full written content and the prefix made durable by Sync;
// tests build crash images by truncating the written bytes at any offset at
// or beyond the durable prefix — exactly the set of states a real crash can
// leave behind.
type Mem struct {
	mu          sync.Mutex
	files       map[string]*memFile
	dirs        map[string]bool
	writeFaults map[string]*writeFault
	syncFaults  map[string]error
	dirSyncs    int
	renames     int
}

// NewMem returns an empty in-memory filesystem with a root directory.
func NewMem() *Mem {
	return &Mem{
		files:       make(map[string]*memFile),
		dirs:        map[string]bool{".": true, "/": true},
		writeFaults: make(map[string]*writeFault),
		syncFaults:  make(map[string]error),
	}
}

func memClean(name string) string { return filepath.Clean(name) }

type memHandle struct {
	m        *Mem
	name     string
	f        *memFile
	pos      int
	readable bool
	writable bool
	closed   bool
}

// OpenFile supports the flag combinations the durability layer uses:
// O_RDONLY for replay, O_WRONLY|O_CREATE(|O_TRUNC|O_APPEND) for segments
// and snapshots. Writes always land at the end of the file — the layer is
// append-only by construction.
func (m *Mem) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	name = memClean(name)
	f, ok := m.files[name]
	if !ok {
		if flag&os.O_CREATE == 0 {
			return nil, &os.PathError{Op: "open", Path: name, Err: os.ErrNotExist}
		}
		if dir := filepath.Dir(name); !m.dirExistsLocked(dir) {
			return nil, &os.PathError{Op: "open", Path: name, Err: os.ErrNotExist}
		}
		f = &memFile{}
		m.files[name] = f
	} else if flag&os.O_TRUNC != 0 {
		f.data = nil
		f.synced = 0
	}
	writable := flag&(os.O_WRONLY|os.O_RDWR) != 0
	return &memHandle{
		m:        m,
		name:     name,
		f:        f,
		readable: !writable || flag&os.O_RDWR != 0,
		writable: writable,
	}, nil
}

func (h *memHandle) Read(p []byte) (int, error) {
	h.m.mu.Lock()
	defer h.m.mu.Unlock()
	if h.closed {
		return 0, os.ErrClosed
	}
	if !h.readable {
		return 0, &os.PathError{Op: "read", Path: h.name, Err: os.ErrPermission}
	}
	if h.pos >= len(h.f.data) {
		return 0, io.EOF
	}
	n := copy(p, h.f.data[h.pos:])
	h.pos += n
	return n, nil
}

func (h *memHandle) Write(p []byte) (int, error) {
	h.m.mu.Lock()
	defer h.m.mu.Unlock()
	if h.closed {
		return 0, os.ErrClosed
	}
	if !h.writable {
		return 0, &os.PathError{Op: "write", Path: h.name, Err: os.ErrPermission}
	}
	if fault := h.m.writeFaults[h.name]; fault != nil && fault.remaining < len(p) {
		n := fault.remaining
		h.f.data = append(h.f.data, p[:n]...)
		fault.remaining = 0
		return n, fault.err
	} else if fault != nil {
		fault.remaining -= len(p)
	}
	h.f.data = append(h.f.data, p...)
	return len(p), nil
}

func (h *memHandle) Sync() error {
	h.m.mu.Lock()
	defer h.m.mu.Unlock()
	if h.closed {
		return os.ErrClosed
	}
	if err := h.m.syncFaults[h.name]; err != nil {
		return err
	}
	h.f.synced = len(h.f.data)
	return nil
}

func (h *memHandle) Close() error {
	h.m.mu.Lock()
	defer h.m.mu.Unlock()
	if h.closed {
		return os.ErrClosed
	}
	h.closed = true
	return nil
}

// Rename moves a file. Like the real call it is atomic; fault injection for
// the rename-durability window is modeled by the caller's SyncDir discipline
// (see DirSyncs).
func (m *Mem) Rename(oldpath, newpath string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	oldpath, newpath = memClean(oldpath), memClean(newpath)
	f, ok := m.files[oldpath]
	if !ok {
		return &os.LinkError{Op: "rename", Old: oldpath, New: newpath, Err: os.ErrNotExist}
	}
	delete(m.files, oldpath)
	m.files[newpath] = f
	m.renames++
	return nil
}

// Remove deletes the named file.
func (m *Mem) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	name = memClean(name)
	if _, ok := m.files[name]; !ok {
		return &os.PathError{Op: "remove", Path: name, Err: os.ErrNotExist}
	}
	delete(m.files, name)
	return nil
}

// MkdirAll registers the directory and all parents.
func (m *Mem) MkdirAll(path string, perm os.FileMode) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	path = memClean(path)
	for p := path; ; p = filepath.Dir(p) {
		m.dirs[p] = true
		if p == filepath.Dir(p) {
			break
		}
	}
	return nil
}

func (m *Mem) dirExistsLocked(dir string) bool {
	if m.dirs[dir] {
		return true
	}
	prefix := dir + string(filepath.Separator)
	for name := range m.files {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

// ReadDir lists the sorted base names of the directory's direct file
// children.
func (m *Mem) ReadDir(name string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	name = memClean(name)
	if !m.dirExistsLocked(name) {
		return nil, &os.PathError{Op: "readdir", Path: name, Err: os.ErrNotExist}
	}
	var out []string
	for fname := range m.files {
		if filepath.Dir(fname) == name {
			out = append(out, filepath.Base(fname))
		}
	}
	sort.Strings(out)
	return out, nil
}

// Size returns the file's full written length.
func (m *Mem) Size(name string) (int64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[memClean(name)]
	if !ok {
		return 0, &os.PathError{Op: "stat", Path: name, Err: os.ErrNotExist}
	}
	return int64(len(f.data)), nil
}

// SyncDir records a directory fsync (the behavioral assertion crash tests
// check: every publish-by-rename and segment create/remove must be followed
// by one).
func (m *Mem) SyncDir(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.dirExistsLocked(memClean(name)) {
		return &os.PathError{Op: "syncdir", Path: name, Err: os.ErrNotExist}
	}
	m.dirSyncs++
	return nil
}

// --- test instrumentation ---

// Bytes returns a copy of the file's full written content (durable or not)
// and whether the file exists.
func (m *Mem) Bytes(name string) ([]byte, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[memClean(name)]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), f.data...), true
}

// SyncedLen returns the length of the file's durable prefix (bytes covered
// by the last successful Sync).
func (m *Mem) SyncedLen(name string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[memClean(name)]
	if !ok {
		return 0
	}
	return f.synced
}

// SetFile installs content as a fully durable file, creating parents. Crash
// tests use it to build post-crash filesystem images.
func (m *Mem) SetFile(name string, data []byte) {
	m.mu.Lock()
	defer m.mu.Unlock()
	name = memClean(name)
	for p := filepath.Dir(name); ; p = filepath.Dir(p) {
		m.dirs[p] = true
		if p == filepath.Dir(p) {
			break
		}
	}
	m.files[name] = &memFile{data: append([]byte(nil), data...), synced: len(data)}
}

// TruncateFile cuts the file's content to n bytes, simulating a torn tail.
func (m *Mem) TruncateFile(name string, n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[memClean(name)]
	if !ok {
		return
	}
	if n < len(f.data) {
		f.data = f.data[:n]
	}
	if f.synced > len(f.data) {
		f.synced = len(f.data)
	}
}

// FailWritesAfter arms a write fault on name: the next n bytes written
// succeed, after which the triggering write is cut short and err is
// returned; all later writes fail immediately (sticky, like a full disk).
func (m *Mem) FailWritesAfter(name string, n int, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err == nil {
		err = ErrNoSpace
	}
	m.writeFaults[memClean(name)] = &writeFault{remaining: n, err: err}
}

// FailSync makes every Sync of name fail with err (sticky until cleared).
func (m *Mem) FailSync(name string, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err == nil {
		err = ErrSyncFailed
	}
	m.syncFaults[memClean(name)] = err
}

// ClearFaults disarms all injected faults.
func (m *Mem) ClearFaults() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.writeFaults = make(map[string]*writeFault)
	m.syncFaults = make(map[string]error)
}

// DirSyncs returns how many directory fsyncs have been issued.
func (m *Mem) DirSyncs() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.dirSyncs
}

// Files returns the sorted full paths of every file in the filesystem.
func (m *Mem) Files() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.files))
	for name := range m.files {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// String summarizes the filesystem state (debugging aid for failed tests).
func (m *Mem) String() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var b strings.Builder
	names := make([]string, 0, len(m.files))
	for name := range m.files {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := m.files[name]
		fmt.Fprintf(&b, "%s: %d bytes (%d synced)\n", name, len(f.data), f.synced)
	}
	return b.String()
}
