package iofault

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestMemWriteSyncRead(t *testing.T) {
	m := NewMem()
	if err := m.MkdirAll("wal", 0o755); err != nil {
		t.Fatal(err)
	}
	f, err := m.OpenFile("wal/seg", os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello ")); err != nil {
		t.Fatal(err)
	}
	if got := m.SyncedLen("wal/seg"); got != 0 {
		t.Fatalf("synced %d bytes before any Sync", got)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("world")); err != nil {
		t.Fatal(err)
	}
	if got := m.SyncedLen("wal/seg"); got != 6 {
		t.Fatalf("synced = %d, want 6 (unsynced suffix must not count)", got)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	data, ok := m.Bytes("wal/seg")
	if !ok || string(data) != "hello world" {
		t.Fatalf("content = %q, %v", data, ok)
	}
	r, err := m.OpenFile("wal/seg", os.O_RDONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	all, err := io.ReadAll(r)
	if err != nil || string(all) != "hello world" {
		t.Fatalf("read back %q, %v", all, err)
	}
}

func TestMemWriteFaultShortAndSticky(t *testing.T) {
	m := NewMem()
	f, err := m.OpenFile("seg", os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	m.FailWritesAfter("seg", 4, ErrNoSpace)
	n, err := f.Write([]byte("abcdefgh"))
	if n != 4 || !errors.Is(err, ErrNoSpace) {
		t.Fatalf("short write = (%d, %v), want (4, ErrNoSpace)", n, err)
	}
	// Sticky: nothing more lands.
	n, err = f.Write([]byte("xy"))
	if n != 0 || !errors.Is(err, ErrNoSpace) {
		t.Fatalf("post-fault write = (%d, %v), want (0, ErrNoSpace)", n, err)
	}
	data, _ := m.Bytes("seg")
	if string(data) != "abcd" {
		t.Fatalf("content after fault = %q, want the 4-byte torn prefix", data)
	}
	m.ClearFaults()
	if n, err := f.Write([]byte("Z")); n != 1 || err != nil {
		t.Fatalf("write after ClearFaults = (%d, %v)", n, err)
	}
}

func TestMemSyncFault(t *testing.T) {
	m := NewMem()
	f, _ := m.OpenFile("seg", os.O_WRONLY|os.O_CREATE, 0o644)
	f.Write([]byte("data"))
	m.FailSync("seg", ErrSyncFailed)
	if err := f.Sync(); !errors.Is(err, ErrSyncFailed) {
		t.Fatalf("Sync = %v, want ErrSyncFailed", err)
	}
	if got := m.SyncedLen("seg"); got != 0 {
		t.Fatalf("failed Sync must not advance durable prefix (got %d)", got)
	}
}

func TestMemTruncateSimulatesTornTail(t *testing.T) {
	m := NewMem()
	m.SetFile("seg", []byte("0123456789"))
	m.TruncateFile("seg", 3)
	data, _ := m.Bytes("seg")
	if string(data) != "012" {
		t.Fatalf("truncated content = %q", data)
	}
	if got := m.SyncedLen("seg"); got != 3 {
		t.Fatalf("synced after truncate = %d", got)
	}
}

func TestMemReadDir(t *testing.T) {
	m := NewMem()
	if _, err := m.ReadDir("nope"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing dir: %v", err)
	}
	m.SetFile("d/b", nil)
	m.SetFile("d/a", nil)
	m.SetFile("d/sub/c", nil)
	names, err := m.ReadDir("d")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("ReadDir = %v, want direct children [a b]", names)
	}
}

func TestWriteAtomicMem(t *testing.T) {
	m := NewMem()
	m.MkdirAll("snap", 0o755)
	path := filepath.Join("snap", "idx.bin")
	err := WriteAtomic(m, path, func(w io.Writer) error {
		_, err := w.Write([]byte("payload"))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	data, ok := m.Bytes(path)
	if !ok || string(data) != "payload" {
		t.Fatalf("published content = %q, %v", data, ok)
	}
	if got := m.SyncedLen(path); got != len("payload") {
		t.Fatalf("published file not fsynced (synced=%d)", got)
	}
	if m.DirSyncs() == 0 {
		t.Fatal("WriteAtomic must fsync the parent directory after rename")
	}
	if _, ok := m.Bytes(path + ".tmp"); ok {
		t.Fatal("temporary file left behind")
	}
}

func TestWriteAtomicFailureLeavesOldFile(t *testing.T) {
	m := NewMem()
	m.SetFile("snap/idx.bin", []byte("old"))
	m.FailWritesAfter("snap/idx.bin.tmp", 2, ErrNoSpace)
	err := WriteAtomic(m, "snap/idx.bin", func(w io.Writer) error {
		_, err := w.Write([]byte("newcontent"))
		return err
	})
	if !errors.Is(err, ErrNoSpace) {
		t.Fatalf("err = %v, want ErrNoSpace", err)
	}
	data, _ := m.Bytes("snap/idx.bin")
	if string(data) != "old" {
		t.Fatalf("old file clobbered: %q", data)
	}
	if _, ok := m.Bytes("snap/idx.bin.tmp"); ok {
		t.Fatal("failed tmp file left behind")
	}
}

func TestWriteAtomicOS(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.bin")
	want := bytes.Repeat([]byte{0xAB}, 1024)
	if err := WriteAtomic(OS{}, path, func(w io.Writer) error {
		_, err := w.Write(want)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("read back %d bytes, err %v", len(got), err)
	}
	ents, _ := os.ReadDir(dir)
	if len(ents) != 1 {
		t.Fatalf("stray files in dir: %v", ents)
	}
}
